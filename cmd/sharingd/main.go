// Command sharingd is the sharing-as-a-service control plane: a long-running
// HTTP/JSON server over the concurrent-safe allocation library
// (internal/alloc). Customers POST bids and lifecycle events; the daemon
// prices them in O(probes) against cached performance surfaces, batches
// concurrent arrivals into single market-clearing epochs, and exposes the
// market, per-VM state, serving stats, expvar, and pprof over the same port.
//
// Endpoints:
//
//	POST /v1/bid     {"bench","k","budget","market"?}   price one bid
//	POST /v1/arrive  {"name","bench","k","budget"}      join the market
//	POST /v1/depart  {"name"}                           leave the market
//	POST /v1/phase   {"name","phase"}                   program phase change
//	GET  /v1/vm?name=                                   one VM's allocation
//	GET  /v1/market                                     market snapshot
//	GET  /v1/stats                                      serving telemetry
//	GET  /healthz, /debug/vars, /debug/pprof/*
//
// Usage:
//
//	sharingd -synthetic -addr 127.0.0.1:8080
//	sharingd -results results/perf.json -backend procpool -shards 4
//	sharingd -loadtest -synthetic -duration 5s -clients 8 -min-rps 2000
//
// Ctrl-C drains gracefully: in-flight requests finish, simulator results
// checkpoint, then the process exits 0. A second Ctrl-C kills it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sharing/internal/alloc"
	"sharing/internal/distrib"
	"sharing/internal/econ"
	"sharing/internal/experiments"
	"sharing/internal/fleet"
	"sharing/internal/workload"
)

func main() {
	experiments.MaybeWorker()
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		synthetic   = flag.Bool("synthetic", false, "closed-form surfaces instead of simulator probes")
		n           = flag.Int("n", experiments.DefaultTraceLen, "instructions per thread (simulator probes)")
		seed        = flag.Int64("seed", experiments.DefaultSeed, "workload seed")
		results     = flag.String("results", "", "JSON results cache (reused across runs)")
		traceCache  = flag.String("tracecache", "", "directory for the binary trace cache (reused across runs)")
		backend     = flag.String("backend", "inproc", "execution backend: inproc (worker pool in this process) or procpool (worker subprocesses)")
		shards      = flag.Int("shards", 0, "procpool worker subprocess count (0 = default)")
		probeBudget = flag.Int("probe-budget", 0, "probes per search before the exhaustive fallback (0 = lattice size, fallback disabled)")
		supSlices   = flag.Int("supply-slices", 64, "chip supply: rentable Slices")
		supBanks    = flag.Int("supply-banks", 128, "chip supply: rentable 64KB L2 banks")
		quiet       = flag.Bool("q", false, "suppress per-run progress")

		// Load-test harness (implies an in-process server; -addr ignored).
		loadtest = flag.Bool("loadtest", false, "run the load-test harness against an in-process server and exit")
		duration = flag.Duration("duration", 5*time.Second, "loadtest: measurement window")
		clients  = flag.Int("clients", 8, "loadtest: concurrent keep-alive HTTP clients")
		minRPS   = flag.Float64("min-rps", 0, "loadtest: fail (exit 1) below this sustained request rate")
		churn    = flag.Bool("churn", true, "loadtest: run concurrent arrive/depart/phase churn alongside the bids")
	)
	flag.Parse()

	supply := econ.Supply{Slices: *supSlices, Banks: *supBanks}

	// Build the allocator: closed-form surfaces, or the cycle-level
	// simulator behind the Runner's results cache and execution backend.
	var (
		a   *alloc.Allocator
		r   *experiments.Runner
		err error
	)
	if *synthetic {
		a, err = alloc.New(alloc.Params{
			Slices: experiments.StdSlices, CacheKB: experiments.StdCaches,
			ProbeBudget: *probeBudget, Supply: supply,
		}, fleet.SyntheticProber{})
	} else {
		r = experiments.NewRunner()
		r.TraceLen, r.Seed, r.ResultsPath = *n, *seed, *results
		r.TraceCacheDir = *traceCache
		if !*quiet {
			r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		var be distrib.Backend
		be, err = experiments.NewBackend(*backend, *shards, *traceCache)
		if err != nil {
			fatal(err)
		}
		if be != nil {
			r.Backend = be
			defer be.Close()
		}
		if err = r.Load(); err != nil {
			fatal(err)
		}
		a, err = experiments.NewAllocator(r, supply, *probeBudget)
	}
	if err != nil {
		fatal(err)
	}

	srv := newServer(a)

	if *loadtest {
		// Synthetic surfaces serve any benchmark name; the simulator-backed
		// allocator is driven over the real workload set.
		benches := workload.Names()
		if *synthetic {
			benches = benches[:0]
			for i := 0; i < 12; i++ {
				benches = append(benches, fmt.Sprintf("lt-bench-%02d", i))
			}
		}
		if err := runLoadTest(srv, loadTestOpts{
			duration: *duration,
			clients:  *clients,
			minRPS:   *minRPS,
			churn:    *churn,
			benches:  benches,
		}); err != nil {
			fatal(err)
		}
		saveRunner(r)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv}

	// Ctrl-C drains instead of killing: stop accepting, let in-flight
	// requests (and their simulations) finish, checkpoint the results
	// cache, exit 0. A second Ctrl-C falls through to the default hard
	// kill — same contract as cmd/sweep.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sharingd: interrupt - draining in-flight requests (Ctrl-C again to kill)")
		signal.Stop(sigs)
		if r != nil {
			r.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sharingd: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "sharingd: listening on %s\n", ln.Addr())
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	saveRunner(r)
	st := a.Stats()
	fmt.Fprintf(os.Stderr, "sharingd: drained - %d bids, %d membership ops over %d epochs\n",
		st.Bids, st.Ops, st.Epochs)
}

func saveRunner(r *experiments.Runner) {
	if r == nil {
		return
	}
	if err := r.Save(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sharingd:", err)
	os.Exit(1)
}
