package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"sharing/internal/alloc"
	"sharing/internal/econ"
)

// The HTTP face of the allocation library: a thin JSON codec over
// alloc.Allocator. Every handler is safe for arbitrary concurrency — bids
// and reads ride the allocator's lock-free paths, membership ops its
// group-commit queue — so the server needs no locking of its own beyond
// per-endpoint request counters.

// httpCounters counts requests per endpoint (exposed via /v1/stats and
// /debug/vars).
type httpCounters struct {
	bid, arrive, depart, phase atomic.Int64
	vm, market, stats          atomic.Int64
	errors                     atomic.Int64
}

func (c *httpCounters) snapshot() map[string]int64 {
	return map[string]int64{
		"bid": c.bid.Load(), "arrive": c.arrive.Load(),
		"depart": c.depart.Load(), "phase": c.phase.Load(),
		"vm": c.vm.Load(), "market": c.market.Load(),
		"stats": c.stats.Load(), "errors": c.errors.Load(),
	}
}

type server struct {
	a    *alloc.Allocator
	mux  *http.ServeMux
	http httpCounters
}

func newServer(a *alloc.Allocator) *server {
	s := &server{a: a, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/bid", s.handleBid)
	s.mux.HandleFunc("POST /v1/arrive", s.handleArrive)
	s.mux.HandleFunc("POST /v1/depart", s.handleDepart)
	s.mux.HandleFunc("POST /v1/phase", s.handlePhase)
	s.mux.HandleFunc("GET /v1/vm", s.handleVM)
	s.mux.HandleFunc("GET /v1/market", s.handleMarket)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Observability: the process-wide expvar page (which carries this
	// server's allocator stats, see publishExpvar) and the pprof profiles,
	// mounted explicitly — the server never touches http.DefaultServeMux.
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	publishExpvar(s)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// expvar names are process-global and Publish panics on duplicates, so the
// "sharingd" var is registered once and routed to the most recent server
// (tests and the load-test harness construct several).
var (
	expvarOnce sync.Once
	expvarSrc  atomic.Pointer[server]
)

func publishExpvar(s *server) {
	expvarSrc.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("sharingd", expvar.Func(func() any {
			cur := expvarSrc.Load()
			return map[string]any{
				"alloc": cur.a.Stats(),
				"http":  cur.http.snapshot(),
			}
		}))
	})
}

// marketSpec selects the prices a bid is evaluated at: a named paper market
// (Market1..Market3), explicit per-resource costs, or — when absent — the
// allocator's current clearing prices.
type marketSpec struct {
	Name      string  `json:"name,omitempty"`
	SliceCost float64 `json:"sliceCost,omitempty"`
	BankCost  float64 `json:"bankCost,omitempty"`
}

func (sp *marketSpec) resolve(a *alloc.Allocator) (econ.Market, error) {
	if sp == nil {
		return a.Prices(), nil
	}
	if sp.Name != "" {
		for _, m := range econ.Markets() {
			if m.Name == sp.Name {
				return m, nil
			}
		}
		return econ.Market{}, fmt.Errorf("unknown market %q", sp.Name)
	}
	if sp.SliceCost > 0 || sp.BankCost > 0 {
		return econ.Market{Name: "custom", SliceCost: sp.SliceCost, BankCost: sp.BankCost}, nil
	}
	return a.Prices(), nil
}

type bidRequest struct {
	Bench  string      `json:"bench"`
	K      int         `json:"k"`
	Budget float64     `json:"budget"`
	Market *marketSpec `json:"market,omitempty"`
}

func (r *bidRequest) utility() econ.Utility {
	u := econ.Utility{K: r.K, Budget: r.Budget}
	if u.K == 0 {
		u.K = 1
	}
	if u.Budget == 0 {
		u.Budget = econ.DefaultBudget
	}
	return u
}

type arriveRequest struct {
	Name   string  `json:"name"`
	Bench  string  `json:"bench"`
	K      int     `json:"k"`
	Budget float64 `json:"budget"`
}

type nameRequest struct {
	Name string `json:"name"`
}

type phaseRequest struct {
	Name  string `json:"name"`
	Phase int    `json:"phase"`
}

// receiptReply flattens an alloc.Receipt for the wire.
type receiptReply struct {
	Seq        uint64                `json:"seq"`
	Epoch      uint64                `json:"epoch"`
	Batched    int                   `json:"batched"`
	Residents  int                   `json:"residents"`
	Prices     econ.Market           `json:"prices"`
	TotalU     float64               `json:"totalUtility"`
	Allocation *econ.Allocation      `json:"allocation,omitempty"`
	Reconfig   *receiptReconfigReply `json:"reconfig,omitempty"`
}

type receiptReconfigReply struct {
	AddSlices  int   `json:"addSlices,omitempty"`
	DropSlices int   `json:"dropSlices,omitempty"`
	AddBanks   int   `json:"addBanks,omitempty"`
	DropBanks  int   `json:"dropBanks,omitempty"`
	Cycles     int64 `json:"cycles"`
}

func (s *server) receiptReply(rc alloc.Receipt) receiptReply {
	rep := receiptReply{
		Seq: rc.Seq, Epoch: rc.Epoch, Batched: rc.Batched,
		Prices:     s.a.Prices(),
		Allocation: rc.Allocation,
	}
	if rc.Result != nil {
		rep.Residents = len(rc.Result.Allocations)
		rep.TotalU = rc.Result.TotalUtility
	}
	if rc.Reconfig != nil {
		rep.Reconfig = &receiptReconfigReply{
			AddSlices: rc.Reconfig.AddSlices, DropSlices: rc.Reconfig.DropSlices,
			AddBanks: rc.Reconfig.AddBanks, DropBanks: rc.Reconfig.DropBanks,
			Cycles: rc.Reconfig.Cycles,
		}
	}
	return rep
}

func (s *server) handleBid(w http.ResponseWriter, r *http.Request) {
	s.http.bid.Add(1)
	var req bidRequest
	if !s.decode(w, r, &req) {
		return
	}
	m, err := req.Market.resolve(s.a)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	br, err := s.a.PriceBid(req.Bench, req.utility(), m)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.reply(w, br)
}

func (s *server) handleArrive(w http.ResponseWriter, r *http.Request) {
	s.http.arrive.Add(1)
	var req arriveRequest
	if !s.decode(w, r, &req) {
		return
	}
	bid := bidRequest{K: req.K, Budget: req.Budget}
	rc, err := s.a.Arrive(req.Name, req.Bench, bid.utility())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.reply(w, s.receiptReply(rc))
}

func (s *server) handleDepart(w http.ResponseWriter, r *http.Request) {
	s.http.depart.Add(1)
	var req nameRequest
	if !s.decode(w, r, &req) {
		return
	}
	rc, err := s.a.Depart(req.Name)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.reply(w, s.receiptReply(rc))
}

func (s *server) handlePhase(w http.ResponseWriter, r *http.Request) {
	s.http.phase.Add(1)
	var req phaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	rc, err := s.a.Reconfigure(req.Name, req.Phase)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.reply(w, s.receiptReply(rc))
}

func (s *server) handleVM(w http.ResponseWriter, r *http.Request) {
	s.http.vm.Add(1)
	name := r.URL.Query().Get("name")
	st, ok := s.a.VM(name)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no vm %q", name))
		return
	}
	s.reply(w, st)
}

// marketReply is the published market snapshot.
type marketReply struct {
	Epoch  uint64         `json:"epoch"`
	Prices econ.Market    `json:"prices"`
	TotalU float64        `json:"totalUtility"`
	VMs    []alloc.VMStat `json:"vms"`
}

func (s *server) handleMarket(w http.ResponseWriter, r *http.Request) {
	s.http.market.Add(1)
	v := s.a.Snapshot()
	rep := marketReply{Epoch: v.Epoch, Prices: s.a.Prices(), VMs: v.VMs}
	if rep.VMs == nil {
		rep.VMs = []alloc.VMStat{}
	}
	if v.Result != nil {
		rep.TotalU = v.Result.TotalUtility
	}
	s.reply(w, rep)
}

type statsReply struct {
	Alloc alloc.Stats      `json:"alloc"`
	HTTP  map[string]int64 `json:"http"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.http.stats.Add(1)
	s.reply(w, statsReply{Alloc: s.a.Stats(), HTTP: s.http.snapshot()})
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *server) reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.http.errors.Add(1)
	}
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.http.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
