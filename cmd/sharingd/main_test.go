package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"sharing/internal/alloc"
	"sharing/internal/econ"
	"sharing/internal/experiments"
	"sharing/internal/fleet"
	"sharing/internal/market"
)

// The daemon tests drive the real sharingd binary: TestMain re-execs this
// test binary with runMainEnv set, which runs sharingd's main() on the
// scripted flags — the same pattern as cmd/sweep.
const runMainEnv = "SHARINGD_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(runMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func sharingdCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), runMainEnv+"=1")
	return cmd
}

// startDaemon launches sharingd on a kernel-assigned loopback port and
// returns the base URL once the listening line appears on stderr, plus a
// function that delivers SIGINT and collects (exit error, full stderr).
func startDaemon(t *testing.T, args ...string) (string, func() (error, string)) {
	t.Helper()
	cmd := sharingdCmd(append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	var tail strings.Builder
	var base string
	deadline := time.After(30 * time.Second)
	for base == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				cmd.Wait()
				t.Fatalf("sharingd exited before listening; stderr:\n%s", tail.String())
			}
			fmt.Fprintln(&tail, line)
			if rest, found := strings.CutPrefix(line, "sharingd: listening on "); found {
				base = "http://" + strings.TrimSpace(rest)
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("sharingd never printed its listening line; stderr:\n%s", tail.String())
		}
	}

	stop := func() (error, string) {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					err := <-done
					return err, tail.String()
				}
				fmt.Fprintln(&tail, line)
			case <-time.After(60 * time.Second):
				cmd.Process.Kill()
				return fmt.Errorf("drain timed out"), tail.String()
			}
		}
	}
	return base, stop
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v\n%s", url, err, body)
	}
}

// post sends v and decodes a 200 reply into out; a non-200 status is
// returned as an error with the server's message.
func post(url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// TestDaemonEndpointsAndDrain boots a synthetic-surface daemon, walks every
// endpoint over real HTTP — checking the served bid against an in-test
// sequential engine pricing the same request over the same closed-form
// surfaces — then SIGINTs it and verifies the graceful drain: the drain
// banner, the final op accounting line, and a zero exit.
func TestDaemonEndpointsAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the daemon in a subprocess")
	}
	base, stop := startDaemon(t, "-synthetic")

	// Liveness first.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	// A served bid must match a from-scratch sequential pricing of the same
	// request in THIS process — same closed-form surfaces, same lattice and
	// supply defaults as main(), crossing a process and JSON boundary.
	u := econ.Utility2()
	m := econ.Market2()
	ref, err := market.New(market.Params{
		Slices: experiments.StdSlices, CacheKB: experiments.StdCaches,
		Supply: econ.Supply{Slices: 64, Banks: 128},
	}, fleet.SyntheticProber{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.PriceBidAt("smoke-bench", u, m, econ.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var br market.BidResult
	if err := post(base+"/v1/bid", bidRequest{
		Bench: "smoke-bench", K: u.K, Budget: u.Budget,
		Market: &marketSpec{Name: m.Name},
	}, &br); err != nil {
		t.Fatal(err)
	}
	if got := alloc.NormalizeBid(br); !reflect.DeepEqual(got, alloc.NormalizeBid(want)) {
		t.Fatalf("served bid diverged from sequential reference:\n got %+v\nwant %+v", got, want)
	}

	// Membership lifecycle: arrive → vm → phase → market → depart.
	var rc receiptReply
	if err := post(base+"/v1/arrive", arriveRequest{Name: "vm1", Bench: "smoke-bench", K: u.K, Budget: u.Budget}, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.Seq != 1 || rc.Epoch != 1 || rc.Residents != 1 || rc.Allocation == nil {
		t.Fatalf("arrive receipt: %+v", rc)
	}
	var vm alloc.VMStat
	getJSON(t, base+"/v1/vm?name=vm1", &vm)
	if vm.Name != "vm1" || vm.Bench != "smoke-bench" {
		t.Fatalf("vm snapshot: %+v", vm)
	}
	if err := post(base+"/v1/phase", phaseRequest{Name: "vm1", Phase: 1}, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.Seq != 2 || rc.Reconfig == nil {
		t.Fatalf("phase receipt (reconfig plan expected for a warm VM): %+v", rc)
	}
	var mkt marketReply
	getJSON(t, base+"/v1/market", &mkt)
	if mkt.Epoch != 2 || len(mkt.VMs) != 1 || mkt.TotalU <= 0 {
		t.Fatalf("market snapshot: %+v", mkt)
	}
	if err := post(base+"/v1/depart", nameRequest{Name: "vm1"}, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.Seq != 3 || rc.Residents != 0 {
		t.Fatalf("depart receipt: %+v", rc)
	}

	// Error contract: malformed and unknown requests are clean JSON errors,
	// not 500s, and land in the error counter.
	if err := post(base+"/v1/depart", nameRequest{Name: "ghost"}, nil); err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("ghost depart: want 422, got %v", err)
	}
	if err := post(base+"/v1/bid", map[string]any{"bench": "x", "bogus": 1}, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown field: want 400, got %v", err)
	}
	if resp, err := http.Get(base + "/v1/vm?name=ghost"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost vm: want 404, got %v %v", resp.Status, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Telemetry: per-endpoint counters and allocator stats over /v1/stats,
	// and the same data on the expvar page.
	var st statsReply
	getJSON(t, base+"/v1/stats", &st)
	if st.HTTP["bid"] < 2 || st.HTTP["arrive"] != 1 || st.HTTP["errors"] < 3 {
		t.Fatalf("http counters: %+v", st.HTTP)
	}
	if st.Alloc.Epochs != 3 || st.Alloc.Ops != 3 || st.Alloc.Bids < 1 {
		t.Fatalf("alloc stats: %+v", st.Alloc)
	}
	var vars struct {
		Sharingd *statsReply `json:"sharingd"`
	}
	getJSON(t, base+"/debug/vars", &vars)
	if vars.Sharingd == nil || vars.Sharingd.HTTP["bid"] < 2 {
		t.Fatalf("expvar page missing sharingd var: %+v", vars.Sharingd)
	}

	// SIGINT: graceful drain, accounting line, exit 0.
	err, out := stop()
	if err != nil {
		t.Fatalf("drain exited nonzero: %v\nstderr:\n%s", err, out)
	}
	if !strings.Contains(out, "draining in-flight requests") {
		t.Fatalf("no drain banner; stderr:\n%s", out)
	}
	if !strings.Contains(out, "sharingd: drained - ") {
		t.Fatalf("no drain accounting line; stderr:\n%s", out)
	}
}

// TestLoadTestHarness runs the -loadtest mode end to end in a subprocess
// with a short window and checks the printed summary: requests flowed, the
// percentiles are ordered, and the end-to-end verification (every bid
// DeepEqual-checked, final clearing replayed sequentially) passed.
func TestLoadTestHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a timed load test in a subprocess")
	}
	cmd := sharingdCmd("-loadtest", "-synthetic", "-duration", "1s", "-clients", "4", "-min-rps", "1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("loadtest: %v\nstderr:\n%s", err, stderr.String())
	}
	var sum ltSummary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary: %v\n%s", err, stdout.String())
	}
	if !sum.Verified {
		t.Fatalf("loadtest summary not verified: %+v", sum)
	}
	if sum.Requests == 0 || sum.RPS <= 0 || sum.ChurnOps == 0 {
		t.Fatalf("empty loadtest: %+v", sum)
	}
	if sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms {
		t.Fatalf("percentiles out of order: %+v", sum)
	}
	if sum.Epochs == 0 || sum.CacheHitRate <= 0.5 {
		t.Fatalf("serving stats implausible: %+v", sum)
	}
}
