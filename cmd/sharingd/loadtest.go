package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharing/internal/alloc"
	"sharing/internal/econ"
	"sharing/internal/market"
)

// The load-test harness (-loadtest): stand up the real server in-process on
// a loopback port, drive it with concurrent keep-alive HTTP clients for a
// fixed window, and report sustained throughput and client-observed
// latency. Correctness rides along end to end: every bid response is
// DeepEqual-checked against a sequential engine pricing the same bid over
// the same surfaces, an optional churn goroutine exercises the membership
// endpoints throughout, and the run ends with the sequential-replay
// verification of the final clearing. The numbers it prints feed the
// "serve" block of BENCH_ssim.json.

type loadTestOpts struct {
	duration time.Duration
	clients  int
	minRPS   float64
	churn    bool
	benches  []string
}

// ltCase is one point of the bid workload; its request body is prebuilt so
// the measurement loop only pays for the HTTP round trip.
type ltCase struct {
	body []byte
	want market.BidResult // sequential reference, normalized
}

type ltSummary struct {
	Requests     int64   `json:"requests"`
	Seconds      float64 `json:"seconds"`
	RPS          float64 `json:"rps"`
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Clients      int     `json:"clients"`
	ChurnOps     int64   `json:"churnOps"`
	Epochs       int64   `json:"epochs"`
	Coalesced    int64   `json:"coalesced"`
	CacheHitRate float64 `json:"cacheHitRate"`
	Verified     bool    `json:"verified"`
}

func runLoadTest(srv *server, o loadTestOpts) error {
	if o.clients <= 0 {
		o.clients = 1
	}
	a := srv.a

	// Build the workload and its sequential reference: every (bench,
	// utility, market) combination, priced by a fresh single-goroutine
	// engine sharing the allocator's surface cache. The warm-up doubles as
	// the cache fill, so the measured window is the steady serving state.
	p := a.Params()
	ref, err := market.New(market.Params{
		Slices: p.Slices, CacheKB: p.CacheKB, ProbeBudget: p.ProbeBudget,
		Supply: p.Supply, Tol: p.Tol, MaxIter: p.MaxIter,
		Surfaces: a.Cache(),
	}, nil)
	if err != nil {
		return err
	}
	var cases []ltCase
	for _, bench := range o.benches {
		for _, u := range econ.Utilities() {
			for _, m := range econ.Markets() {
				if _, err := a.PriceBid(bench, u, m); err != nil {
					return fmt.Errorf("loadtest warm-up %s: %w", bench, err)
				}
				// PriceBidAt with the fixed zero start is the engine's pure
				// pricing path — the same function of (surface, prices,
				// utility) the allocator computes.
				want, err := ref.PriceBidAt(bench, u, m, econ.Config{}, nil)
				if err != nil {
					return err
				}
				body, err := json.Marshal(bidRequest{
					Bench: bench, K: u.K, Budget: u.Budget,
					Market: &marketSpec{Name: m.Name},
				})
				if err != nil {
					return err
				}
				cases = append(cases, ltCase{body: body, want: alloc.NormalizeBid(want)})
			}
		}
	}

	// The server under test: the real handler stack on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "sharingd: loadtest against %s (%d clients, %s, %d bid cases)\n",
		base, o.clients, o.duration, len(cases))

	transport := &http.Transport{
		MaxIdleConns:        o.clients * 2,
		MaxIdleConnsPerHost: o.clients * 2,
	}
	defer transport.CloseIdleConnections()

	//ssim:nolint detrand: wall-clock here only bounds and times the measurement window; results are verified against the sequential reference separately
	start := time.Now()
	deadline := start.Add(o.duration)

	// errs is partitioned per goroutine: slot c per bid client, the last
	// slot for the churn client.
	var wg sync.WaitGroup
	lats := make([][]time.Duration, o.clients)
	errs := make([]error, o.clients+1)
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Transport: transport}
			var mine []time.Duration
			//ssim:nolint detrand: per-request wall-clock is the latency being measured, not a model input
			for i := 0; time.Now().Before(deadline); i++ {
				tc := &cases[(c*13+i)%len(cases)]
				//ssim:nolint detrand: per-request wall-clock is the latency being measured, not a model input
				t0 := time.Now()
				br, err := postBid(client, base, tc.body)
				if err != nil {
					errs[c] = err
					return
				}
				//ssim:nolint detrand: per-request wall-clock is the latency being measured, not a model input
				mine = append(mine, time.Since(t0))
				if got := alloc.NormalizeBid(br); !reflect.DeepEqual(got, tc.want) {
					errs[c] = fmt.Errorf("client %d: served bid diverged from sequential reference:\n got %+v\nwant %+v", c, got, tc.want)
					return
				}
			}
			lats[c] = mine
		}(c)
	}

	// Membership churn alongside the bid load: arrivals, phase changes, and
	// departures through the HTTP endpoints, exercising the group-commit
	// clearing under fire.
	var churnOps atomic.Int64
	if o.churn {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Transport: transport}
			phased := a.Cache().Phased()
			var kept []string // residents left behind, bounded below
			//ssim:nolint detrand: wall-clock only bounds the churn loop
			for i := 0; time.Now().Before(deadline); i++ {
				name := fmt.Sprintf("churn-vm-%d", i)
				bench := o.benches[i%len(o.benches)]
				u := econ.Utilities()[i%3]
				if err := postJSON(client, base+"/v1/arrive", arriveRequest{Name: name, Bench: bench, K: u.K, Budget: u.Budget}); err != nil {
					errs[c] = err
					return
				}
				churnOps.Add(1)
				if phased && i%2 == 0 {
					if err := postJSON(client, base+"/v1/phase", phaseRequest{Name: name, Phase: i % 3}); err != nil {
						errs[c] = err
						return
					}
					churnOps.Add(1)
				}
				// Every fourth VM stays resident (the final clearing the
				// sequential replay must reproduce covers them); the resident
				// set is kept bounded so reprices stay epoch-sized.
				if i%4 == 3 {
					kept = append(kept, name)
					if len(kept) <= 6 {
						continue
					}
					name, kept = kept[0], kept[1:]
				}
				if err := postJSON(client, base+"/v1/depart", nameRequest{Name: name}); err != nil {
					errs[c] = err
					return
				}
				churnOps.Add(1)
			}
		}(o.clients)
	}
	wg.Wait()
	//ssim:nolint detrand: wall-clock closes the throughput measurement
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Final determinism witness: replay the committed op log sequentially
	// and demand a DeepEqual-identical clearing.
	if _, err := a.Verify(); err != nil {
		return err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("loadtest: no requests completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	st := a.Stats()
	hitRate := 0.0
	if st.ProbeLookups > 0 {
		hitRate = float64(st.ProbeLookups-st.CacheMisses) / float64(st.ProbeLookups)
	}
	sum := ltSummary{
		Requests:     int64(len(all)),
		Seconds:      elapsed.Seconds(),
		RPS:          float64(len(all)) / elapsed.Seconds(),
		P50Ms:        pct(0.50),
		P99Ms:        pct(0.99),
		Clients:      o.clients,
		ChurnOps:     churnOps.Load(),
		Epochs:       st.Epochs,
		Coalesced:    st.Coalesced,
		CacheHitRate: hitRate,
		Verified:     true,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if o.minRPS > 0 && sum.RPS < o.minRPS {
		return fmt.Errorf("loadtest: %.0f req/s below the %.0f req/s floor", sum.RPS, o.minRPS)
	}
	return nil
}

// postBid POSTs a prebuilt bid body and decodes the BidResult.
func postBid(c *http.Client, base string, body []byte) (market.BidResult, error) {
	resp, err := c.Post(base+"/v1/bid", "application/json", bytes.NewReader(body))
	if err != nil {
		return market.BidResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return market.BidResult{}, fmt.Errorf("bid: %s: %s", resp.Status, msg)
	}
	var br market.BidResult
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return market.BidResult{}, err
	}
	return br, nil
}

// postJSON POSTs v and drains the response (membership receipts are
// verified in aggregate by the final sequential replay).
func postJSON(c *http.Client, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	return nil
}
