// Command phases regenerates Table 7: gcc split into ten phases, each
// simulated independently across the configuration grid; per-phase optimal
// VCore configurations per perf^k/area metric, and the dynamic-vs-static
// gain including the hypervisor's reconfiguration costs (10,000 cycles for
// an L2 change, 500 for a Slice-only change).
package main

import (
	"flag"
	"fmt"
	"os"

	"sharing/internal/autotuner"
	"sharing/internal/econ"
	"sharing/internal/experiments"
	"sharing/internal/hypervisor"
	"sharing/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", experiments.DefaultTraceLen, "instructions per phase")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "workload seed")
		results  = flag.String("results", "", "JSON results cache (reused across runs)")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		autotune = flag.Bool("autotune", false, "also run the §4 heartbeat auto-tuner and compare with the oracle")
	)
	flag.Parse()

	r := experiments.NewRunner()
	r.TraceLen, r.Seed, r.ResultsPath = *n, *seed, *results
	if !*quiet {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if err := r.Load(); err != nil {
		fatal(err)
	}
	tables, err := experiments.Table7(r)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 7 - optimal VCore configurations for the 10 gcc phases")
	for _, t := range tables {
		s := t.Schedule
		fmt.Printf("\nperf^%d/area:\n  phase:    ", t.K)
		for i := range s.PerPhase {
			fmt.Printf("%8d", i+1)
		}
		fmt.Printf("\n  L2 (KB):  ")
		for _, c := range s.PerPhase {
			fmt.Printf("%8d", c.CacheKB)
		}
		fmt.Printf("\n  Slices:   ")
		for _, c := range s.PerPhase {
			fmt.Printf("%8d", c.Slices)
		}
		fmt.Printf("\n  static best: %v\n", s.StaticBest)
		fmt.Printf("  dyn/static gain (with reconfig costs): %.1f%%\n", 100*s.Gain)
	}
	if *autotune {
		if err := runAutotune(r); err != nil {
			fatal(err)
		}
	}
	if err := r.Save(); err != nil {
		fatal(err)
	}
}

// runAutotune rebuilds the per-phase measurements and compares the online
// heartbeat auto-tuner against the oracle dynamic schedule and the best
// static configuration.
func runAutotune(r *experiments.Runner) error {
	prof, err := workload.Lookup("gcc")
	if err != nil {
		return err
	}
	phases := make([]econ.PhaseData, prof.NumPhases())
	for pi := range phases {
		g, err := r.GridPhase("gcc", pi, experiments.StdSlices, experiments.StdCaches)
		if err != nil {
			return err
		}
		pd := econ.PhaseData{Insts: uint64(r.EffectiveTraceLen()), Cycles: make(map[econ.Config]int64, len(g))}
		for cfg, ipc := range g {
			pd.Cycles[cfg] = int64(float64(r.EffectiveTraceLen()) / ipc)
		}
		phases[pi] = pd
	}
	reconf := func(a, b econ.Config) int64 {
		return hypervisor.ReconfigCost(a.CacheKB, b.CacheKB, a.Slices, b.Slices)
	}
	fmt.Println("\nHeartbeat auto-tuner (§4) vs oracle, perf^k/area:")
	for k := 1; k <= 3; k++ {
		oracle, err := econ.PhaseAnalysis(phases, k, reconf)
		if err != nil {
			return err
		}
		sched, err := autotuner.Tune(phases, k, 0.05, econ.Config{Slices: 2, CacheKB: 128}, reconf)
		if err != nil {
			return err
		}
		fmt.Printf("  k=%d: tuner GME %.4g (%d moves, %d probes) vs oracle %.4g, static %.4g\n",
			k, sched.GME, sched.Moves, sched.Probes, oracle.DynGME, oracle.StaticGME)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phases:", err)
	os.Exit(1)
}
