// Command simworker is a standalone simulation worker: it serves the binary
// SREQ/SRES request/response loop of the procpool execution backend on
// stdin/stdout until its input pipe closes. The sweep-facing commands do not
// need it — their procpool backends re-exec the running binary in worker
// mode — but a standalone worker is handy for driving the wire protocol by
// hand or from a non-Go harness.
//
// Usage:
//
//	simworker [-tracecache DIR] < requests > results
package main

import (
	"flag"
	"fmt"
	"os"

	"sharing/internal/distrib"
	"sharing/internal/experiments"
)

func main() {
	experiments.MaybeWorker()
	var (
		traceCache = flag.String("tracecache", "", "directory for the binary trace cache (default: the procpool's "+distrib.WorkerTraceCacheEnv+" env var)")
	)
	flag.Parse()

	r := experiments.NewRunner()
	r.TraceCacheDir = *traceCache
	if r.TraceCacheDir == "" {
		//ssim:nolint detrand: trace-cache location is IO plumbing; results derive only from request fields
		r.TraceCacheDir = os.Getenv(distrib.WorkerTraceCacheEnv)
	}
	if err := experiments.ServeWorker(r, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simworker:", err)
		os.Exit(1)
	}
}
