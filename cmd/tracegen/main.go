// Command tracegen synthesizes workload traces (the stand-in for the
// paper's GEM5 Alpha full-system traces) and writes them in the binary STRC
// format that cmd/ssim and the library can replay.
//
// Usage:
//
//	tracegen -bench gcc -n 500000 -seed 1 -o gcc.strc
//	tracegen -bench gcc -stats            # print mix statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"sharing/internal/trace"
	"sharing/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "gcc", "benchmark name")
		n     = flag.Int("n", 500000, "dynamic instructions per thread")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("o", "", "output file (default <bench>.strc)")
		stats = flag.Bool("stats", false, "print trace statistics instead of writing a file")
		phase = flag.Int("phase", -1, "generate only this phase (0-based; gcc has 10)")
	)
	flag.Parse()

	prof, err := workload.Lookup(*bench)
	if err != nil {
		fatal(err)
	}
	var mt *trace.MultiTrace
	if *phase >= 0 {
		tr, err := prof.GeneratePhase(*phase, *n, *seed)
		if err != nil {
			fatal(err)
		}
		mt = trace.Single(tr)
	} else {
		mt, err = prof.Generate(*n, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *stats {
		for ti, th := range mt.Threads {
			fmt.Printf("%s thread %d: %s\n", mt.Name, ti, trace.Measure(th))
		}
		return
	}
	path := *out
	if path == "" {
		path = *bench + ".strc"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, mt); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d threads x %d insts)\n", path, len(mt.Threads), mt.Threads[0].Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
