// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at a reduced trace length, plus ablations for the design choices
// DESIGN.md calls out. The full-scale numbers come from ./run_experiments.sh
// (see EXPERIMENTS.md); these benches exercise the identical code paths and
// report the headline statistics via testing.B metrics.
//
//	go test -bench=. -benchmem
package sharing

import (
	"fmt"
	"testing"

	"sharing/internal/area"
	"sharing/internal/econ"
	"sharing/internal/experiments"
	"sharing/internal/sim"
	"sharing/internal/workload"
)

// benchTraceLen keeps testing.B runs tractable; the official harness uses
// experiments.DefaultTraceLen.
const benchTraceLen = 60_000

func newBenchRunner() *experiments.Runner {
	r := experiments.NewRunner()
	r.TraceLen = benchTraceLen
	r.Seed = experiments.DefaultSeed
	return r
}

// benchSuite memoizes a reduced-grid suite across benchmarks in one process.
var benchSuiteCache econ.Suite

func benchSuite(b *testing.B) econ.Suite {
	b.Helper()
	if benchSuiteCache != nil {
		return benchSuiteCache
	}
	r := newBenchRunner()
	s, err := r.SuiteGrids(nil, []int{1, 2, 3, 4, 6, 8}, []int{0, 64, 128, 256, 512, 1024, 2048})
	if err != nil {
		b.Fatal(err)
	}
	benchSuiteCache = s
	return s
}

// BenchmarkFig10AreaBreakdown regenerates the Slice area decomposition.
func BenchmarkFig10AreaBreakdown(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		parts := area.SliceBreakdown()
		overhead = area.SharingOverheadFraction()
		if len(parts) == 0 {
			b.Fatal("empty breakdown")
		}
	}
	b.ReportMetric(100*overhead, "sharing-overhead-%")
}

// BenchmarkFig11AreaBreakdown regenerates the with-L2 decomposition.
func BenchmarkFig11AreaBreakdown(b *testing.B) {
	var l2 float64
	for i := 0; i < b.N; i++ {
		parts := area.SliceBreakdownWithL2()
		l2 = parts[0].Fraction
	}
	b.ReportMetric(100*l2, "l2-share-%")
}

// BenchmarkFig12Scalability measures VCore speedup with Slice count for a
// representative scaling benchmark (gobmk) and reports the 8-Slice speedup.
func BenchmarkFig12Scalability(b *testing.B) {
	r := newBenchRunner()
	var speedup float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig12(r, []string{"gobmk"})
		if err != nil {
			b.Fatal(err)
		}
		speedup = data[0].Speedup[len(data[0].Speedup)-1]
	}
	b.ReportMetric(speedup, "gobmk-8slice-x")
}

// BenchmarkFig13CacheSensitivity measures the cache curve for the paper's
// most sensitive benchmark (omnetpp) and an insensitive one (libquantum).
func BenchmarkFig13CacheSensitivity(b *testing.B) {
	r := newBenchRunner()
	r.TraceLen = 200_000 // scan tiers need laps
	var omPeak, lqEnd float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig13(r, []string{"omnetpp", "libquantum"})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range data {
			switch d.Bench {
			case "omnetpp":
				omPeak = 0
				for _, v := range d.Speedup {
					if v > omPeak {
						omPeak = v
					}
				}
			case "libquantum":
				lqEnd = d.Speedup[len(d.Speedup)-1]
			}
		}
	}
	b.ReportMetric(omPeak, "omnetpp-peak-x")
	b.ReportMetric(lqEnd, "libquantum-8MB-x")
}

// BenchmarkTable4Optima finds perf^k/area-optimal configurations per
// benchmark and reports how many distinct optima the suite produces (the
// paper's point: they are highly non-uniform).
func BenchmarkTable4Optima(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var distinct int
	for i := 0; i < b.N; i++ {
		seen := map[econ.Config]bool{}
		for _, g := range s {
			for k := 1; k <= 3; k++ {
				cfg, _ := econ.BestByMetric(k, g)
				seen[cfg] = true
			}
		}
		distinct = len(seen)
	}
	b.ReportMetric(float64(distinct), "distinct-optima")
}

// BenchmarkTable6Markets recomputes utility optima across the three markets.
func BenchmarkTable6Markets(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var moved int
	for i := 0; i < b.N; i++ {
		moved = 0
		for _, g := range s {
			for _, u := range econ.Utilities() {
				base, _ := u.Best(econ.Market2(), g)
				for _, m := range []econ.Market{econ.Market1(), econ.Market3()} {
					cfg, _ := u.Best(m, g)
					if cfg != base {
						moved++
					}
				}
			}
		}
	}
	b.ReportMetric(float64(moved), "optima-moved-by-prices")
}

// BenchmarkFig15FixedGain computes the market-efficiency gain distribution
// versus the best static fixed architecture and reports the headline max
// (the paper: up to ~5x).
func BenchmarkFig15FixedGain(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var st econ.GainStats
	for i := 0; i < b.N; i++ {
		gains, _, err := econ.FixedArchGains(s, econ.Utilities(), econ.Market2())
		if err != nil {
			b.Fatal(err)
		}
		st = econ.Summarize(gains)
	}
	b.ReportMetric(st.Max, "max-gain-x")
	b.ReportMetric(st.Mean, "mean-gain-x")
	b.ReportMetric(float64(st.Points), "pairs")
}

// BenchmarkFig16HeteroGain is Fig. 15 against a heterogeneous baseline
// (the paper: over 3x).
func BenchmarkFig16HeteroGain(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var st econ.GainStats
	for i := 0; i < b.N; i++ {
		gains, _, err := econ.HeteroGains(s, econ.Utilities(), econ.Market2())
		if err != nil {
			b.Fatal(err)
		}
		st = econ.Summarize(gains)
	}
	b.ReportMetric(st.Max, "max-gain-x")
	b.ReportMetric(st.Mean, "mean-gain-x")
}

// BenchmarkFig17Heterogeneity sweeps the datacenter big/small-core mix and
// reports how far the optimal big-core share moves across application mixes.
func BenchmarkFig17Heterogeneity(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		points, err := econ.DatacenterMix(s["hmmer"], s["gobmk"], econ.BigCore(), econ.SmallCore(), 2,
			[]float64{0, 0.25, 0.5, 0.75, 1}, []float64{0, 0.5, 1})
		if err != nil {
			b.Fatal(err)
		}
		opt := econ.OptimalBigFrac(points)
		min, max := 1.0, 0.0
		for _, f := range opt {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		spread = max - min
	}
	b.ReportMetric(spread, "optimal-bigfrac-spread")
}

// BenchmarkTable7Phases runs the gcc dynamic-phase analysis and reports the
// perf^3/area dynamic-vs-static gain (the paper: 19.4%).
func BenchmarkTable7Phases(b *testing.B) {
	r := newBenchRunner()
	r.TraceLen = 40_000
	var gain float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Table7(r)
		if err != nil {
			b.Fatal(err)
		}
		gain = tables[2].Schedule.Gain
	}
	b.ReportMetric(100*gain, "perf3-dyn-gain-%")
}

// BenchmarkAblationSecondOperandNetwork measures the benefit of doubling
// Scalar Operand Network bandwidth (the paper's §5.1 sensitivity study
// found only ~1%, justifying a single network).
func BenchmarkAblationSecondOperandNetwork(b *testing.B) {
	r := newBenchRunner()
	var gme float64
	for i := 0; i < b.N; i++ {
		_, g, err := experiments.AblationSecondOperandNetwork(r, []string{"gobmk", "gcc", "h264ref"})
		if err != nil {
			b.Fatal(err)
		}
		gme = g
	}
	b.ReportMetric(100*(gme-1), "speedup-%")
}

// BenchmarkAblationDistributedLSQ measures the cost of shrinking the
// per-Slice LSQ banks (a DESIGN.md sizing choice; the banked design's
// aggregate capacity scales with Slice count).
func BenchmarkAblationDistributedLSQ(b *testing.B) {
	prof, err := workload.Lookup("mcf")
	if err != nil {
		b.Fatal(err)
	}
	mt, err := prof.Generate(benchTraceLen, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		big := sim.DefaultParams(4, 512)
		small := sim.DefaultParams(4, 512)
		small.VCore.LSQSize = 8
		rb, err := sim.Run(big, mt)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sim.Run(small, mt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rs.Cycles) / float64(rb.Cycles)
	}
	b.ReportMetric(ratio, "slowdown-8entry-lsq-x")
}

// BenchmarkSimulatorThroughput reports raw simulation speed.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := workload.Lookup("gcc")
	if err != nil {
		b.Fatal(err)
	}
	mt, err := prof.Generate(benchTraceLen, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.DefaultParams(4, 512), mt)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(benchTraceLen*b.N)/b.Elapsed().Seconds(), "insts/s")
	_ = cycles
}

// BenchmarkTraceGeneration reports workload-synthesis speed.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace("gcc", benchTraceLen, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchTraceLen*b.N)/b.Elapsed().Seconds(), "insts/s")
}

func ExampleSimulate() {
	mt, _ := GenerateTrace("libquantum", 20000, 1)
	res, _ := Simulate(SimConfig{Slices: 2, CacheKB: 128}, mt)
	fmt.Println(res.Instructions)
	// Output: 20000
}

// BenchmarkAblationGShare compares the paper's baseline bimodal predictor
// against the sketched cross-Slice gshare extension (§3.1) on a
// branch-heavy, hard-to-predict benchmark.
func BenchmarkAblationGShare(b *testing.B) {
	prof, err := workload.Lookup("sjeng")
	if err != nil {
		b.Fatal(err)
	}
	mt, err := prof.Generate(benchTraceLen, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	var speedup, misBase, misG float64
	for i := 0; i < b.N; i++ {
		base := sim.DefaultParams(4, 512)
		gsh := sim.DefaultParams(4, 512)
		gsh.VCore.UseGShare = true
		rb, err := sim.Run(base, mt)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := sim.Run(gsh, mt)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(rb.Cycles) / float64(rg.Cycles)
		misBase = rb.VCores[0].MispredictRate()
		misG = rg.VCores[0].MispredictRate()
	}
	b.ReportMetric(speedup, "gshare-speedup-x")
	b.ReportMetric(100*misBase, "bimodal-mispredict-%")
	b.ReportMetric(100*misG, "gshare-mispredict-%")
}
