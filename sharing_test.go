package sharing

import "testing"

func TestPublicAPISimulate(t *testing.T) {
	mt, err := GenerateTrace("libquantum", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{Slices: 2, CacheKB: 128}, mt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 10000 || res.IPC() <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 15 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	if _, err := GenerateTrace("nope", 1000, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicAPIUtilityOptimization(t *testing.T) {
	r := NewRunner()
	r.TraceLen = 6000
	grid, err := r.Grid("hmmer", []int{1, 2}, []int{0, 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg, u := Utility2().Best(Market2(), grid)
	if u <= 0 || !cfg.Valid() {
		t.Fatalf("best = %v (%f)", cfg, u)
	}
	// Market identities exposed through the facade.
	if Market2().Cost(VCoreConfig{Slices: 1}) != Market2().Cost(VCoreConfig{CacheKB: 128}) {
		t.Fatal("Market2 equal-area identity")
	}
	if Market1().SliceCost <= Market2().SliceCost {
		t.Fatal("Market1 must price Slices above area cost")
	}
	if Market3().BankCost <= Market2().BankCost {
		t.Fatal("Market3 must price cache above area cost")
	}
	if Utility1().K != 1 || Utility3().K != 3 {
		t.Fatal("utility exponents")
	}
}
