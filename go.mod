module sharing

go 1.22
